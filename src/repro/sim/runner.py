"""The synchronous execution engine for the AL and UL models (§2.1–2.2).

One :class:`Runner` drives ``n`` node programs, an adversary and a
schedule through a sequence of communication rounds and produces an
:class:`~repro.sim.transcript.Execution`.

Round anatomy (messages sent at round ``w`` arrive at round ``w+1``):

1. every non-broken node's program runs on the inbox delivered this round
   and queues its outgoing messages (broken nodes' programs do not run —
   the adversary speaks for them);
2. outside the set-up phase the adversary observes all queued traffic
   (*rushing*), may break into / leave nodes, and may queue messages in
   the name of broken nodes;
3. delivery is resolved: faithfully in the AL model; by the adversary's
   delivery plan in the UL model (modify / delete / duplicate / inject);
4. link reliability is derived by diffing sent vs. delivered traffic
   (Definition 4), the s-operational set is advanced (Definition 5), and
   system-log lines ("compromised"/"recovered") are appended when a
   node's status changes.

The set-up phase is adversary-free (the paper's assumption); all ROMs are
frozen when it ends.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable

from repro.sim.adversary_api import Adversary, AdversaryApi, faithful_delivery
from repro.adversary.connectivity import ConnectivityTracker
from repro.sim.clock import Phase, RoundInfo, Schedule
from repro.sim.messages import Envelope
from repro.sim.node import Node, NodeContext, NodeProgram
from repro.sim.randomness import RandomnessSource
from repro.sim.transcript import COMPROMISED, RECOVERED, Execution, RoundRecord

__all__ = ["Runner", "ALRunner", "ULRunner", "RunObserver"]

InputProvider = Callable[[int, RoundInfo], list[Any]]


class RunObserver:
    """Hook interface for watching an execution round by round.

    Observers see each :class:`RoundRecord` the moment it is appended —
    *during* the run, not after it — which is what lets a monitor
    fail-fast on the exact round an invariant breaks instead of burning
    the remaining units (see
    :class:`repro.analysis.monitor.RuntimeInvariantMonitor`).  Observers
    must treat the execution as read-only; they are analysis, not
    protocol.
    """

    def on_round(self, execution: Execution, record: RoundRecord) -> None:
        """Called after every round's record is appended."""

    def on_run_end(self, execution: Execution) -> None:
        """Called once after the last round (adversary output included)."""


class Runner:
    """Shared machinery; use :class:`ALRunner` or :class:`ULRunner`."""

    model = "abstract"

    def __init__(
        self,
        programs: list[NodeProgram],
        adversary: Adversary,
        schedule: Schedule,
        seed: int | str = 0,
        input_provider: InputProvider | None = None,
        *,
        observers: list[RunObserver] | None = None,
    ) -> None:
        self.n = len(programs)
        if self.n < 2:
            raise ValueError("need at least two nodes")
        self.observers: list[RunObserver] = list(observers or [])
        self.schedule = schedule
        self.seed = seed
        self.randomness = RandomnessSource(seed)
        self.adversary = adversary
        self.nodes = [Node(i, program, self.n) for i, program in enumerate(programs)]
        self._input_provider = input_provider
        self._scheduled_inputs: dict[tuple[int, int], list[Any]] = {}
        self.execution = Execution(
            n=self.n, schedule=schedule, seed=seed, model=self.model,
            node_outputs=[[] for _ in range(self.n)],
        )
        self._prev_status: list[bool] = [True] * self.n  # True = "good" last round

    # -- driver-facing API -----------------------------------------------------

    def add_observer(self, observer: RunObserver) -> None:
        """Attach an observer before (or even during) :meth:`run`."""
        self.observers.append(observer)

    def add_external_input(self, node_id: int, round_number: int, value: Any) -> None:
        """Schedule the paper's ``x_{i,w}``: an input handed to node
        ``node_id`` at the start of round ``round_number``."""
        self._scheduled_inputs.setdefault((node_id, round_number), []).append(value)

    def run(self, units: int) -> Execution:
        """Simulate time units ``0 .. units-1`` and return the execution."""
        total = self.schedule.total_rounds(units)
        self.adversary.begin(self.n, self.schedule, self.randomness.adversary())
        for round_number in range(total):
            self._run_round(self.schedule.info(round_number))
        self.execution.adversary_output.extend(self.adversary.finish())
        for observer in self.observers:
            observer.on_run_end(self.execution)
        return self.execution

    # -- internals ---------------------------------------------------------------

    def _inputs_for(self, node_id: int, info: RoundInfo) -> list[Any]:
        inputs = list(self._scheduled_inputs.get((node_id, info.round), []))
        if self._input_provider is not None:
            inputs.extend(self._input_provider(node_id, info))
        return inputs

    def _run_round(self, info: RoundInfo) -> None:
        # 1. honest computation
        traffic: list[Envelope] = []
        for node in self.nodes:
            inbox = node.pending_inbox
            node.pending_inbox = []
            if node.broken:
                continue  # broken nodes have empty output; adversary acts for them
            ctx = NodeContext(
                node_id=node.node_id,
                n=self.n,
                info=info,
                rng=self.randomness.node_round(node.node_id, info.round),
                rom=node.rom,
                external_inputs=self._inputs_for(node.node_id, info),
            )
            node.program.step(ctx, inbox)
            traffic.extend(ctx.outbox)
            if ctx.outputs:
                stamped = node.record_outputs(info.round, ctx.outputs)
                self.execution.node_outputs[node.node_id].extend(stamped)

        # 2-3. adversary interaction + delivery
        if info.phase is Phase.SETUP:
            sent = tuple(traffic)
            plan = faithful_delivery(sent, self.n)
            broken = frozenset()
            if info.is_phase_end:
                for node in self.nodes:
                    node.rom.freeze()
        else:
            api = AdversaryApi(self.nodes, info, self.randomness.stream("api", info.round))
            observed = tuple(traffic)  # rushing: the pre-injection view
            self.adversary.on_round(api, info, observed)
            self.execution.adversary_output.extend(api.output_entries)
            broken = frozenset(i for i, node in enumerate(self.nodes) if node.broken)
            sent = observed + tuple(api.injected) if api.injected else observed
            plan = self._resolve_delivery(api, info, sent)

        self._sanitize_plan(plan)
        for node in self.nodes:
            node.pending_inbox = plan.get(node.node_id, [])

        # 4. accounting
        unreliable = self._unreliable_links(sent, plan, broken)
        operational = self._operational_set(info, broken, unreliable)
        self._log_status_changes(info, broken, operational)
        self.execution.records.append(
            RoundRecord(
                info=info,
                sent=sent,
                delivered={i: tuple(plan.get(i, [])) for i in range(self.n)},
                broken=broken,
                operational=operational,
                unreliable_links=unreliable,
            )
        )
        record = self.execution.records[-1]
        for observer in self.observers:
            observer.on_round(self.execution, record)

    def _sanitize_plan(self, plan: dict[int, list[Envelope]]) -> None:
        for receiver, envelopes in plan.items():
            for envelope in envelopes:
                if envelope.receiver != receiver:
                    raise ValueError(
                        f"delivery plan mismatch: {envelope.describe()} in inbox of {receiver}"
                    )
                if envelope.sender == receiver:
                    raise ValueError("self-links do not exist in the model")

    def _unreliable_links(
        self,
        traffic: tuple[Envelope, ...],
        plan: dict[int, list[Envelope]],
        broken: frozenset[int],
    ) -> frozenset[frozenset[int]]:
        """Definition 4, per round: a link {i, j} is unreliable if an
        endpoint is broken or traffic on either direction was not delivered
        exactly (as a multiset).

        The comparison is linear in the round's traffic instead of
        quadratic per link, and in the common case touches no payload at
        all: the adversary passes delivered envelopes through *by
        reference*, so each direction's delivered id-multiset usually
        equals its sent id-multiset, which already proves multiset
        equality.  Only directions whose id-counts differ are re-compared
        by content (an injected equal *copy* is still a faithful
        delivery) — Counter-based, with the legacy remove-one-by-one
        comparison for unhashable payloads, so adversaries are free to
        inject arbitrary garbage.
        """
        links_broken: set[frozenset[int]] = set()
        for i in broken:
            for j in range(self.n):
                if j != i:
                    links_broken.add(frozenset((i, j)))

        # Fast path: when the plan is, receiver by receiver, exactly the
        # faithful regrouping of the sent traffic (list equality hits the
        # identity shortcut element-wise, since faithful plans pass the
        # very same envelope objects through), every direction's sent and
        # delivered multisets match and the only unreliable links are the
        # broken-endpoint ones.  Any mismatch falls through to the full
        # per-direction accounting below.
        if self._plan_is_faithful(traffic, plan):
            return frozenset(links_broken)

        # per direction: envelope-object id counts (the object lists keep
        # every counted envelope alive, so ids cannot be recycled)
        sent_ids: dict[tuple[int, int], dict[int, int]] = {}
        delivered_ids: dict[tuple[int, int], dict[int, int]] = {}
        sent_objs: dict[tuple[int, int], list[Envelope]] = {}
        delivered_objs: dict[tuple[int, int], list[Envelope]] = {}

        for envelope in traffic:
            if envelope.sender in broken or envelope.receiver in broken:
                continue  # the link is already unreliable; skip bookkeeping
            direction = (envelope.sender, envelope.receiver)
            counts = sent_ids.get(direction)
            if counts is None:
                counts = sent_ids[direction] = {}
                sent_objs[direction] = []
            ident = id(envelope)
            counts[ident] = counts.get(ident, 0) + 1
            sent_objs[direction].append(envelope)
        for receiver, envelopes in plan.items():
            for envelope in envelopes:
                if envelope.sender in broken or receiver in broken:
                    continue
                direction = (envelope.sender, receiver)
                counts = delivered_ids.get(direction)
                if counts is None:
                    counts = delivered_ids[direction] = {}
                    delivered_objs[direction] = []
                ident = id(envelope)
                counts[ident] = counts.get(ident, 0) + 1
                delivered_objs[direction].append(envelope)

        unreliable = set(links_broken)
        for direction in set(sent_ids) | set(delivered_ids):
            link = frozenset(direction)
            if link in unreliable:
                continue
            if sent_ids.get(direction) == delivered_ids.get(direction):
                continue  # identical objects => identical multisets
            sent_side = sent_objs.get(direction, [])
            delivered_side = delivered_objs.get(direction, [])
            try:
                if Counter(sent_side) != Counter(delivered_side):
                    unreliable.add(link)
            except TypeError:
                if not _same_multiset(sent_side, delivered_side):
                    unreliable.add(link)
        return frozenset(unreliable)

    @staticmethod
    def _plan_is_faithful(
        traffic: tuple[Envelope, ...], plan: dict[int, list[Envelope]]
    ) -> bool:
        """Whether ``plan`` delivers exactly the sent traffic, in order.

        Content equality (not identity) per receiver list: an adversary
        that replaces an envelope with an equal copy still delivers
        faithfully under Definition 4.  Receivers in the plan that never
        appear in the traffic must have empty inboxes, and every receiver
        with traffic must appear — otherwise this is not a faithful round.
        """
        regrouped: dict[int, list[Envelope]] = {}
        for envelope in traffic:
            inbox = regrouped.get(envelope.receiver)
            if inbox is None:
                inbox = regrouped[envelope.receiver] = []
            inbox.append(envelope)
        matched = 0
        for receiver, envelopes in plan.items():
            expected = regrouped.get(receiver)
            if expected is None:
                if envelopes:
                    return False
                continue
            if envelopes != expected:
                return False
            matched += 1
        return matched == len(regrouped)

    # -- model-specific hooks ------------------------------------------------------

    def _resolve_delivery(
        self, api: AdversaryApi, info: RoundInfo, traffic: tuple[Envelope, ...]
    ) -> dict[int, list[Envelope]]:
        raise NotImplementedError

    def _operational_set(
        self,
        info: RoundInfo,
        broken: frozenset[int],
        unreliable: frozenset[frozenset[int]],
    ) -> frozenset[int]:
        raise NotImplementedError

    def _log_status_changes(
        self, info: RoundInfo, broken: frozenset[int], operational: frozenset[int]
    ) -> None:
        """Append "compromised"/"recovered" lines on status transitions.

        In the AL model the status is simply non-broken (§2.1); in the UL
        model it is s-operational (§2.2) — a node that becomes
        s-disconnected is logged as compromised even though it is not
        broken.
        """
        for node_id in range(self.n):
            good = node_id in operational
            if good != self._prev_status[node_id]:
                event = RECOVERED if good else COMPROMISED
                self.execution.system_log.append((info.round, node_id, event))
                self._prev_status[node_id] = good


def _same_multiset(a: list[Envelope], b: list[Envelope]) -> bool:
    """Legacy quadratic multiset comparison — kept as the fallback for
    directions carrying unhashable payloads (and as the reference the
    Counter path is tested against)."""
    if len(a) != len(b):
        return False
    remaining = list(b)
    for item in a:
        try:
            remaining.remove(item)
        except ValueError:
            return False
    return True


class ALRunner(Runner):
    """Authenticated-links model: delivery is always faithful; the
    adversary's only powers are reading traffic, breaking into nodes and
    speaking for broken ones."""

    model = "AL"

    def _resolve_delivery(
        self, api: AdversaryApi, info: RoundInfo, traffic: tuple[Envelope, ...]
    ) -> dict[int, list[Envelope]]:
        return faithful_delivery(traffic, self.n)

    def _operational_set(
        self,
        info: RoundInfo,
        broken: frozenset[int],
        unreliable: frozenset[frozenset[int]],
    ) -> frozenset[int]:
        return frozenset(range(self.n)) - broken


class ULRunner(Runner):
    """Unauthenticated-links model: the adversary owns delivery; node
    status is s-operationality tracked per Definitions 4–6.

    Args:
        s: the disconnection threshold used for operational-node
            accounting (the paper's ``s``; experiments use ``s = t``).
    """

    model = "UL"

    def __init__(
        self,
        programs: list[NodeProgram],
        adversary: Adversary,
        schedule: Schedule,
        s: int,
        seed: int | str = 0,
        input_provider: InputProvider | None = None,
        *,
        observers: list[RunObserver] | None = None,
    ) -> None:
        super().__init__(programs, adversary, schedule, seed, input_provider,
                         observers=observers)
        self.s = s
        self.tracker = ConnectivityTracker(self.n, s)

    def _resolve_delivery(
        self, api: AdversaryApi, info: RoundInfo, traffic: tuple[Envelope, ...]
    ) -> dict[int, list[Envelope]]:
        return self.adversary.deliver(api, info, traffic)

    def _operational_set(
        self,
        info: RoundInfo,
        broken: frozenset[int],
        unreliable: frozenset[frozenset[int]],
    ) -> frozenset[int]:
        return self.tracker.observe_round(info, broken, unreliable)
