"""E11 — cryptographic substrate microbenchmarks.

Costs of the primitives everything else is built from, across security
parameters: centralized signing/verification (Schnorr at three group
sizes, RSA-FDH, hash-based), Feldman share verification, and the
threshold combine step (Lagrange interpolation) as a function of t.
"""

import random

import pytest

from repro.crypto.feldman import FeldmanDealer
from repro.crypto.group import named_group
from repro.crypto.hash_sig import MerkleSignatureScheme
from repro.crypto.rsa import RsaFdhScheme
from repro.crypto.schnorr import SchnorrScheme

MESSAGE = b"the public key of N_3 in time unit 7 is v"


@pytest.mark.parametrize("group_name", ["toy64", "toy256", "toy512"])
def test_schnorr_sign(benchmark, group_name):
    scheme = SchnorrScheme(named_group(group_name))
    pair = scheme.generate(random.Random(1))
    benchmark(lambda: scheme.sign(pair.signing_key, MESSAGE))


@pytest.mark.parametrize("group_name", ["toy64", "toy256", "toy512"])
def test_schnorr_verify(benchmark, group_name):
    scheme = SchnorrScheme(named_group(group_name))
    pair = scheme.generate(random.Random(1))
    signature = scheme.sign(pair.signing_key, MESSAGE)
    benchmark(lambda: scheme.verify(pair.verify_key, MESSAGE, signature))
    assert scheme.verify(pair.verify_key, MESSAGE, signature)


def test_rsa_fdh_sign(benchmark):
    scheme = RsaFdhScheme(modulus_bits=512)
    pair = scheme.generate(random.Random(2))
    benchmark(lambda: scheme.sign(pair.signing_key, MESSAGE))


def test_merkle_lamport_verify(benchmark):
    scheme = MerkleSignatureScheme(capacity=8)
    pair = scheme.generate(random.Random(3))
    signature = scheme.sign(pair.signing_key, MESSAGE)
    benchmark(lambda: scheme.verify(pair.verify_key, MESSAGE, signature))


@pytest.mark.parametrize("t", [2, 4, 8])
def test_feldman_share_verification(benchmark, t):
    group = named_group("toy64")
    n = 2 * t + 1
    dealer = FeldmanDealer(group, n=n, threshold=t)
    dealing = dealer.deal(12345, random.Random(4))
    share = dealing.shares[0]
    benchmark(lambda: dealing.commitment.verify_share(group, share))


@pytest.mark.parametrize("t", [2, 4, 8])
def test_threshold_combine(benchmark, t):
    """The Lagrange interpolation that assembles a signature from t+1
    partial signatures."""
    group = named_group("toy64")
    field = group.scalar_field
    rng = random.Random(5)
    poly = field.random_polynomial(t, rng, constant=777)
    points = [(x, poly.evaluate(x)) for x in range(1, t + 2)]
    result = benchmark(lambda: field.interpolate_at_zero(points))
    assert result == 777
