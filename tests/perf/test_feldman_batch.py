"""Batched Feldman share verification (`verify_shares_batch`).

The batch equation must answer exactly what the per-item loop answers:
all-True for honest batches, and — via the per-item fallback — the exact
same verdict vector when anything in the batch is forged, so blame
attribution is identical with the ``feldman_batch`` flag on or off.
"""

import random

from repro.crypto.feldman import FeldmanDealer, verify_shares_batch
from repro.crypto.group import named_group
from repro.crypto.shamir import Share
from repro.perf import configure

GROUP = named_group("toy64")
N, T = 7, 2
RECEIVER_X = 3  # all batches are verified from one receiver's viewpoint


def deal_batch(count, seed=0, zero=False):
    """``count`` independent dealings, each paired with receiver 3's share."""
    rng = random.Random(seed)
    dealer = FeldmanDealer(GROUP, n=N, threshold=T)
    items = []
    for _ in range(count):
        dealing = dealer.deal_zero(rng) if zero else dealer.deal(rng.randrange(GROUP.q), rng)
        items.append((dealing.commitment, dealing.shares[RECEIVER_X - 1]))
    return items


def forge_share(item, delta=1):
    commitment, share = item
    return commitment, Share(x=share.x, value=(share.value + delta) % GROUP.q)


def forge_commitment(item):
    commitment, share = item
    tampered = (GROUP.multiply(commitment.elements[1], GROUP.g),)
    elements = commitment.elements[:1] + tampered + commitment.elements[2:]
    return type(commitment)(elements=elements), share


def test_empty_batch_is_noop(perf):
    assert verify_shares_batch(GROUP, []) == []


def test_all_valid_batch_passes(perf):
    items = deal_batch(6)
    assert verify_shares_batch(GROUP, items) == [True] * 6


def test_forged_share_detected_and_attributed(perf):
    items = deal_batch(6, seed=1)
    items[2] = forge_share(items[2])
    verdicts = verify_shares_batch(GROUP, items)
    assert verdicts == [True, True, False, True, True, True]


def test_forged_commitment_detected_and_attributed(perf):
    items = deal_batch(5, seed=2)
    items[4] = forge_commitment(items[4])
    verdicts = verify_shares_batch(GROUP, items)
    assert verdicts == [True, True, True, True, False]


def test_single_bad_dealer_among_good_is_named_exactly(perf):
    """n-1 honest dealers + 1 forger: the fallback must blame exactly the
    forger, at its batch position, with every honest verdict intact."""
    for bad_position in range(N - 1):
        items = deal_batch(N - 1, seed=3 + bad_position, zero=True)
        items[bad_position] = forge_share(items[bad_position])
        verdicts = verify_shares_batch(GROUP, items)
        expected = [index != bad_position for index in range(N - 1)]
        assert verdicts == expected, bad_position


def test_flag_off_matches_flag_on(perf):
    """Verdict vectors are identical with batching disabled (mixed batch:
    honest, forged share, forged commitment)."""
    def build():
        items = deal_batch(6, seed=9)
        items[1] = forge_share(items[1])
        items[4] = forge_commitment(items[4])
        return items

    configure(enabled=True, feldman_batch=True)
    batched = verify_shares_batch(GROUP, build())
    configure(enabled=True, feldman_batch=False)
    unbatched = verify_shares_batch(GROUP, build())
    assert batched == unbatched == [True, False, True, True, False, True]


def test_batch_matches_individual_verification(perf):
    items = deal_batch(8, seed=4)
    items[0] = forge_share(items[0], delta=5)
    items[7] = forge_share(items[7], delta=7)
    expected = [commitment.verify_share(GROUP, share) for commitment, share in items]
    assert verify_shares_batch(GROUP, items) == expected
