"""E12 (ablation) — per-message signatures vs per-unit session keys.

The paper's §5 footnote: instead of AUTH-SENDing every application
message (certificates + DISPERSE: delivery guaranteed, Θ(n) envelopes and
two signature operations per message), pairs can exchange a session key
per time unit and MAC messages directly (1 envelope, 2 hashes; no
delivery guarantee).  This ablation quantifies the design choice the
paper only sketches:

- *application* envelopes on the wire per delivered message;
- end-to-end wall-clock for an identical chat workload.

Expected shape: the session variant's per-message cost is ~2n× smaller
and independent of n; the AUTH-SEND variant buys delivery through
redundancy.
"""

import time

import pytest

from repro.core.sessions import SESSION_CHANNEL, SessionLayer
from repro.core.uls import UlsCore, build_uls_states, uls_schedule
from repro.sim.adversary_api import PassiveAdversary
from repro.sim.clock import Phase
from repro.sim.messages import Envelope
from repro.sim.node import NodeContext, NodeProgram
from repro.sim.runner import ULRunner

from common import GROUP, SCHEME, emit, format_table

T = 2
UNITS = 2
SCHED = uls_schedule()


class Workload(NodeProgram):
    """Identical chat workload over either transport variant."""

    def __init__(self, state, keys, variant: str):
        super().__init__()
        self.core = UlsCore(state, SCHEME, keys, node_id=state.node_id)
        self.variant = variant
        self.sessions = SessionLayer(self.core) if variant == "sessions" else None
        self.delivered = 0

    def step(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        if ctx.info.phase is Phase.SETUP:
            if ctx.info.is_phase_end and "pds_public_key" not in ctx.rom:
                ctx.write_rom("pds_public_key", self.core.state.public.public_key)
            return
        self.core.on_round(ctx, inbox)
        if self.sessions is not None:
            self.sessions.on_round(ctx, inbox)
            self.delivered += len(self.sessions.accepted())
        else:
            self.delivered += len(self.core.app_accepted())
        if ctx.info.phase is Phase.NORMAL and ctx.info.index_in_phase >= 2:
            for peer in range(self.n):
                if peer == self.node_id:
                    continue
                body = ("chat", self.node_id, ctx.info.round)
                if self.sessions is not None:
                    self.sessions.send(ctx, peer, body)
                else:
                    self.core.app_send(ctx, peer, body)


def run_variant(n: int, variant: str, seed: int = 0):
    public, states, keys = build_uls_states(GROUP, SCHEME, n, T, seed=seed)
    programs = [Workload(states[i], keys[i], variant) for i in range(n)]
    runner = ULRunner(programs, PassiveAdversary(), SCHED, s=T, seed=seed)
    started = time.perf_counter()
    execution = runner.run(units=UNITS)
    elapsed = time.perf_counter() - started
    delivered = sum(p.delivered for p in programs)
    app_envelopes = 0
    for record in execution.records:
        for envelope in record.sent:
            if envelope.channel == SESSION_CHANNEL:
                app_envelopes += 1
            elif envelope.channel == "disperse" and isinstance(envelope.payload, tuple):
                raw = envelope.payload[4]
                if isinstance(raw, tuple) and len(raw) == 8 \
                        and isinstance(raw[0], tuple) and raw[0][:1] == ("app",):
                    app_envelopes += 1
    return delivered, app_envelopes, elapsed


@pytest.fixture(scope="module")
def table():
    rows = []
    for n in (5, 7):
        auth_delivered, auth_envs, auth_time = run_variant(n, "auth-send")
        sess_delivered, sess_envs, sess_time = run_variant(n, "sessions")
        rows.append((n, "AUTH-SEND", auth_delivered,
                     f"{auth_envs / max(1, auth_delivered):.1f}", f"{auth_time:.2f}s"))
        rows.append((n, "session-MAC", sess_delivered,
                     f"{sess_envs / max(1, sess_delivered):.1f}", f"{sess_time:.2f}s"))
        # both variants deliver the full workload under a passive adversary
        assert sess_delivered >= auth_delivered * 0.9
        # the envelope ablation: AUTH-SEND pays ~2(n-1) envelopes/message
        assert auth_envs / max(1, auth_delivered) > 3 * sess_envs / max(1, sess_delivered)
    return rows


def test_e12_session_ablation(table, benchmark):
    emit("e12_sessions", format_table(
        "E12  Ablation: per-message AUTH-SEND vs per-unit session keys "
        "(§5 footnote); identical chat workload",
        ["n", "variant", "messages delivered", "app envelopes / message", "wall-clock"],
        table,
    ))
    benchmark(lambda: run_variant(5, "sessions", seed=9))
