"""The Counter-based link accounting against the legacy reference.

``Runner._unreliable_links`` was rewritten from a quadratic per-link
multiset diff to Counter comparisons; these tests drive both through
randomized traffic/delivery scenarios — including unhashable payloads,
which take the legacy fallback path — and demand identical verdicts.
"""

import random

import pytest

from repro.sim.messages import Envelope
from repro.sim.runner import Runner, _same_multiset
from repro.sim.clock import Schedule
from repro.sim.adversary_api import PassiveAdversary
from repro.sim.node import NodeProgram


class _Idle(NodeProgram):
    def step(self, ctx, inbox):
        pass


def _runner(n=4):
    schedule = Schedule(setup_rounds=1, refresh_rounds=1, normal_rounds=4)
    return Runner([_Idle() for _ in range(n)], PassiveAdversary(), schedule)


def _reference(runner, traffic, plan, broken):
    """The pre-rewrite algorithm, verbatim."""
    sent_by_link = {}
    for envelope in traffic:
        sent_by_link.setdefault((envelope.sender, envelope.receiver), []).append(envelope)
    delivered_by_link = {}
    for receiver, envelopes in plan.items():
        for envelope in envelopes:
            delivered_by_link.setdefault((envelope.sender, receiver), []).append(envelope)
    unreliable = set()
    for i in broken:
        for j in range(runner.n):
            if j != i:
                unreliable.add(frozenset((i, j)))
    for direction in set(sent_by_link) | set(delivered_by_link):
        link = frozenset(direction)
        if link in unreliable:
            continue
        if not _same_multiset(sent_by_link.get(direction, []),
                              delivered_by_link.get(direction, [])):
            unreliable.add(link)
    return frozenset(unreliable)


def _random_scenario(rng, n, hashable=True):
    traffic = []
    for _ in range(rng.randrange(0, 40)):
        sender = rng.randrange(n)
        receiver = rng.choice([x for x in range(n) if x != sender])
        if hashable or rng.random() < 0.7:
            payload = ("p", rng.randrange(5))
        else:
            payload = ["unhashable", rng.randrange(5)]
        traffic.append(Envelope(sender, receiver, "c", payload, 3))

    plan = {i: [] for i in range(n)}
    for envelope in traffic:
        roll = rng.random()
        if roll < 0.65:
            plan[envelope.receiver].append(envelope)         # faithful
        elif roll < 0.75:
            pass                                             # dropped
        elif roll < 0.85:
            plan[envelope.receiver].append(envelope)         # duplicated
            plan[envelope.receiver].append(envelope)
        else:                                                # modified
            plan[envelope.receiver].append(envelope.with_payload(("mod",)))
    # occasional pure injection
    if rng.random() < 0.5 and n >= 2:
        plan[1].append(Envelope(0, 1, "c", ("injected",), 3))
    broken = frozenset(i for i in range(n) if rng.random() < 0.2)
    return tuple(traffic), plan, broken


@pytest.mark.parametrize("hashable", [True, False], ids=["hashable", "mixed-unhashable"])
def test_matches_reference_randomized(hashable):
    runner = _runner(n=4)
    rng = random.Random(2026 if hashable else 2027)
    for _ in range(200):
        traffic, plan, broken = _random_scenario(rng, runner.n, hashable=hashable)
        assert runner._unreliable_links(traffic, plan, broken) == \
            _reference(runner, traffic, plan, broken)


def test_faithful_delivery_no_unreliable_links():
    runner = _runner()
    traffic = tuple(
        Envelope(i, j, "c", ("m", i, j), 1)
        for i in range(4) for j in range(4) if i != j
    )
    plan = {j: [e for e in traffic if e.receiver == j] for j in range(4)}
    assert runner._unreliable_links(traffic, plan, frozenset()) == frozenset()


def test_broken_endpoint_marks_all_links():
    runner = _runner()
    unreliable = runner._unreliable_links((), {i: [] for i in range(4)}, frozenset({2}))
    assert unreliable == frozenset(frozenset((2, j)) for j in range(4) if j != 2)


def test_dropped_and_injected_directions():
    runner = _runner()
    sent = Envelope(0, 1, "c", ("m",), 1)
    injected = Envelope(3, 2, "c", ("fake",), 1)
    plan = {i: [] for i in range(4)}
    plan[2].append(injected)
    unreliable = runner._unreliable_links((sent,), plan, frozenset())
    assert unreliable == frozenset({frozenset((0, 1)), frozenset((2, 3))})


def test_duplicate_counts_matter():
    """Delivering the same envelope twice breaks the multiset equality."""
    runner = _runner()
    envelope = Envelope(0, 1, "c", ("m",), 1)
    plan = {i: [] for i in range(4)}
    plan[1] = [envelope, envelope]
    assert runner._unreliable_links((envelope,), plan, frozenset()) == \
        frozenset({frozenset((0, 1))})


def test_unhashable_payload_direction_falls_back():
    runner = _runner()
    envelope = Envelope(0, 1, "c", ["unhashable"], 1)
    plan = {i: [] for i in range(4)}
    plan[1] = [envelope]
    assert runner._unreliable_links((envelope,), plan, frozenset()) == frozenset()
    plan[1] = []
    assert runner._unreliable_links((envelope,), plan, frozenset()) == \
        frozenset({frozenset((0, 1))})


def test_envelope_hash_is_memoized_and_stable():
    envelope = Envelope(0, 1, "c", ("m", 2), 1)
    first = hash(envelope)
    assert envelope._hash == first
    assert hash(envelope) == first
    twin = Envelope(0, 1, "c", ("m", 2), 1)
    assert hash(twin) == first and twin == envelope


def test_envelope_unhashable_payload_raises():
    envelope = Envelope(0, 1, "c", ["m"], 1)
    with pytest.raises(TypeError):
        hash(envelope)
    assert envelope._hash is None
