"""E6 — §5.1: "almost (t,t)-limited" injection-flood adversaries.

The adversary breaks no nodes and tampers with no genuine traffic; it only
*injects* bogus public keys during the clear-text announcement step of
every refreshment phase (the one window the paper identifies as
injection-sensitive).  Expected shape, per the paper's discussion:

- emulation may fail — nodes can lose their certificates for a unit — but
- **every** node that lost its keys alerts (local awareness), and
- the *number* of alerting nodes grows with the flood, giving the
  operator the paper's "global awareness" signal that the adversary has
  exceeded the model (many simultaneous alerts cannot happen under a
  genuine (t,t)-limited adversary).
"""

import pytest

from repro.adversary.strategies import InjectionFloodAdversary
from repro.core.uls import NEWKEY_CHANNEL

from common import GROUP, SCHEME, build_uls_network, emit, format_table, key_histories

N, T = 5, 2
UNITS = 2


def run_flood(flood_factor: int, seed: int):
    def payload_factory(claimed, receiver, rng):
        fake = SCHEME.key_repr(SCHEME.generate(rng).verify_key)
        return ("newkey", 1, fake)

    adversary = InjectionFloodAdversary(
        payload_factory=payload_factory, channel=NEWKEY_CHANNEL,
        flood_factor=flood_factor,
    ) if flood_factor else None
    public, programs, runner, schedule = build_uls_network(N, T, seed, adversary)
    execution = runner.run(units=UNITS)
    failed = sum(1 for p in programs if dict(p.keystore.history).get(1) == "failed")
    alerting = sum(1 for p in programs if 1 in p.core.alert_units)
    injected = adversary.injected_count if adversary else 0
    return failed, alerting, injected


@pytest.fixture(scope="module")
def table():
    rows = []
    for flood in (0, 1, 2, 4):
        for seed in range(3):
            failed, alerting, injected = run_flood(flood, seed)
            rows.append((flood, seed, injected, failed, alerting))
            # local awareness: every key-less node alerted
            assert alerting == failed
            if flood == 0:
                assert failed == 0
    return rows


def test_e6_injection_flood(table, benchmark):
    emit("e6_injection", format_table(
        "E6  Injection floods during the announcement step (§5.1): "
        "certification may fail but every affected node alerts",
        ["flood factor", "seed", "messages injected", "nodes without unit-1 keys",
         "nodes alerting"],
        table,
    ))
    benchmark(lambda: run_flood(1, 77))
