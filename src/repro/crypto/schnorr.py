"""Centralized Schnorr signatures over a Schnorr group.

This is the default instantiation of the paper's abstract scheme
``CS = (CGen, CSign, CVer)``: existentially unforgeable under chosen
message attack in the random-oracle model under discrete log.  It is also
the *centralized shadow* of the threshold scheme in
:mod:`repro.pds.threshold_schnorr` — a threshold signature combined from
partial signatures verifies under this exact verifier.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.group import SchnorrGroup, named_group
from repro.crypto.hashing import hash_to_int
from repro.crypto.signature import KeyPair, SignatureScheme

__all__ = ["SchnorrSignature", "SchnorrVerifyKey", "SchnorrSigningKey", "SchnorrScheme"]

_CHALLENGE_TAG = "repro/schnorr/challenge"


@dataclass(frozen=True)
class SchnorrVerifyKey:
    """Public key ``y = g^x``."""

    y: int


@dataclass(frozen=True)
class SchnorrSigningKey:
    """Secret exponent ``x`` plus the matching public key (kept for
    convenience so signers do not need to recompute ``g^x``)."""

    x: int
    y: int


@dataclass(frozen=True)
class SchnorrSignature:
    """A signature ``(R, s)`` with ``g^s = R * y^e``, ``e = H(R, y, m)``."""

    commitment: int  # R = g^k
    response: int  # s = k + e*x mod q


class SchnorrScheme(SignatureScheme):
    """Schnorr signatures; see module docstring.

    Args:
        group: the Schnorr group to operate in (defaults to the fast
            ``toy64`` test group; pass ``named_group("toy512")`` or a
            generated group for realistic sizes).
    """

    name = "schnorr"

    def __init__(self, group: SchnorrGroup | None = None) -> None:
        self.group = group or named_group("toy64")

    def key_repr(self, verify_key: SchnorrVerifyKey) -> tuple:
        if not isinstance(verify_key, SchnorrVerifyKey):
            raise TypeError("not a Schnorr verify key")
        return ("schnorr", self.group.p, verify_key.y)

    def generate(self, rng: random.Random) -> KeyPair:
        x = self.group.random_scalar(rng)
        y = self.group.base_power(x)
        return KeyPair(SchnorrVerifyKey(y=y), SchnorrSigningKey(x=x, y=y))

    def challenge(self, commitment: int, y: int, message: bytes) -> int:
        """Fiat--Shamir challenge ``e = H(R, y, m) mod q``.

        Exposed publicly because the threshold scheme computes the same
        challenge when assembling partial signatures.
        """
        return hash_to_int(_CHALLENGE_TAG, self.group.q, commitment, y, message)

    def sign(self, signing_key: SchnorrSigningKey, message: bytes) -> SchnorrSignature:
        # Derandomized nonce (RFC-6979 style): hash of key and message.
        # Keeps the simulator deterministic and avoids nonce-reuse pitfalls.
        k = hash_to_int("repro/schnorr/nonce", self.group.q, signing_key.x, message)
        if k == 0:
            k = 1
        commitment = self.group.base_power(k)
        e = self.challenge(commitment, signing_key.y, message)
        s = (k + e * signing_key.x) % self.group.q
        return SchnorrSignature(commitment=commitment, response=s)

    def verify(self, verify_key: SchnorrVerifyKey, message: bytes, signature: object) -> bool:
        if not isinstance(signature, SchnorrSignature):
            return False
        if not isinstance(verify_key, SchnorrVerifyKey):
            return False
        if not self.group.is_member(signature.commitment):
            return False
        if not self.group.is_member(verify_key.y):
            return False
        if not (0 <= signature.response < self.group.q):
            return False
        e = self.challenge(signature.commitment, verify_key.y, message)
        lhs = self.group.base_power(signature.response)
        rhs = self.group.multiply(signature.commitment, self.group.power(verify_key.y, e))
        return lhs == rhs
