"""E7 — recovery latency: a broken node regains everything one refresh later.

Break ``k <= t`` nodes during unit 1, corrupting their entire mutable PDS
state (share randomized, commitment swapped).  At unit 2's refreshment
phase they must: re-obtain certified local keys (URfr Part I), re-sync the
commitment and recover their share (Part II recovery), and take part in
signing again — with zero alerts, because nothing about the recovery
requires operator involvement when connectivity is intact.
"""

import pytest

from repro.adversary.strategies import BreakinPlan, MobileBreakInAdversary
from repro.crypto.shamir import Share

from common import GROUP, SCHEME, build_uls_network, emit, format_table

N, T = 5, 2
UNITS = 3


def corruptor(program, rng):
    state = program.state
    state.share = Share(x=state.share_index, value=rng.randrange(GROUP.q))
    from repro.crypto.feldman import FeldmanCommitment

    state.key_commitment = FeldmanCommitment(
        elements=tuple(GROUP.base_power(rng.randrange(GROUP.q)) for _ in range(T + 1))
    )


def run_recovery(k: int, seed: int):
    victims = frozenset(range(k))
    plan = BreakinPlan(victims={1: victims}, corrupt_memory=True)
    adversary = MobileBreakInAdversary(plan, corruptor=corruptor)
    public, programs, runner, schedule = build_uls_network(N, T, seed, adversary)
    r2 = schedule.first_normal_round(2)
    for i in range(N):
        runner.add_external_input(i, r2, ("sign", "post-recovery"))
    execution = runner.run(units=UNITS)

    recovered_keys = sum(
        1 for v in victims if dict(programs[v].keystore.history).get(2) == "ok"
    )
    recovered_shares = sum(1 for v in victims if programs[v].state.share_is_valid())
    signed = sum(
        1 for v in victims
        if ("signed", "post-recovery", 2) in execution.outputs_of(v)
    )
    alerts = sum(len(programs[v].core.alert_units) for v in victims)
    return recovered_keys, recovered_shares, signed, alerts


@pytest.fixture(scope="module")
def table():
    rows = []
    for k in range(1, T + 1):
        for seed in range(3):
            keys_ok, shares_ok, signed, alerts = run_recovery(k, seed)
            rows.append((k, seed, keys_ok, shares_ok, signed, alerts, 1))
            assert keys_ok == k
            assert shares_ok == k
            assert signed == k
            assert alerts == 0
    return rows


def test_e7_recovery(table, benchmark):
    emit("e7_recovery", format_table(
        "E7  Recovery after state-corrupting break-ins "
        "(k victims in unit 1; all recover at unit 2's refresh)",
        ["victims k", "seed", "keys recovered", "shares recovered",
         "signing again", "alerts", "latency (units)"],
        table,
    ))
    benchmark(lambda: run_recovery(1, 55))
