"""Recovery-SLO telemetry: how fast the protocol heals, as data.

The invariants (:mod:`repro.analysis.monitor`) say whether a run is
*correct*; this observer says how *well* it recovered — the
service-level reading of the paper's proactive-recovery contract
(Def. 5.3: a clean refreshment phase re-admits a faulted node).  Per run
it measures:

- **time-to-recovery** per impairment span, in time units: a node that
  goes down in unit ``u`` and re-enters the operational set during unit
  ``u + 1``'s refreshment phase scores ``1`` — exactly the "recovered
  one refresh later" contract that experiment E7 asserts, so the SLO
  number and the E7 test agree by construction (see
  ``tests/analysis/test_slo.py``).
- **alert latency**: rounds from the start of a node's open impairment
  span (or, failing that, its latest degraded event) to its ALERT
  output.
- **degraded-mode dwell**: rounds from each structured ``("degraded",
  {...})`` event to the node's next re-entry into the operational set
  (``0`` when the node never left it — degradation without
  disconnection).
- **signing availability** per unit: the fraction of nodes that kept
  their signing machinery, i.e. emitted neither ``no-certificate`` nor
  ``share-refresh-failed`` that unit.

Everything is exposed as JSON-ready structures via :meth:`report`, which
is what the E15 campaigns persist per probe.
"""

from __future__ import annotations

from typing import Any

from repro.sim.node import ALERT
from repro.sim.runner import RunObserver
from repro.sim.transcript import Execution, RoundRecord

__all__ = ["RecoverySloObserver"]

# degraded reasons that take a node's signing ability down for the unit
SIGNING_REASONS = frozenset({"no-certificate", "share-refresh-failed"})


class RecoverySloObserver(RunObserver):
    """Collect recovery SLOs round by round (read-only, JSON out)."""

    def __init__(self) -> None:
        self.spans: list[dict] = []          # closed impairment spans
        self.alerts: list[dict] = []
        self.dwells: list[dict] = []         # resolved degraded dwells
        self.unrecovered: list[dict] = []    # spans still open at run end
        self._n: int | None = None
        self._cursor: list[int] | None = None
        self._open: dict[int, dict] = {}     # node -> open span
        self._open_dwells: dict[int, list[dict]] = {}
        self._last_degraded: dict[int, int] = {}
        self._signing_impaired: dict[int, set[int]] = {}  # unit -> nodes
        self._units_seen: set[int] = set()
        self._finalized = False

    # -- RunObserver -----------------------------------------------------------

    def on_round(self, execution: Execution, record: RoundRecord) -> None:
        n = execution.n
        if self._cursor is None:
            self._n = n
            self._cursor = [0] * n
        info = record.info
        unit = info.time_unit
        self._units_seen.add(unit)
        impaired = set(record.broken) | (set(range(n)) - set(record.operational))

        # span openings and closings.  A re-admission happens at a
        # refreshment phase end, whose record already shows the node
        # operational — so the closing unit is the *recovering* unit.
        for node in sorted(impaired):
            if node not in self._open:
                self._open[node] = {"node": node, "start_round": info.round,
                                    "start_unit": unit}
        for node in sorted(set(self._open) - impaired):
            span = self._open.pop(node)
            span["end_round"] = info.round
            span["end_unit"] = unit
            span["ttr_units"] = unit - span["start_unit"]
            span["ttr_rounds"] = info.round - span["start_round"]
            self.spans.append(span)
            for dwell in self._open_dwells.pop(node, []):
                dwell["dwell_rounds"] = info.round - dwell["round"]
                self.dwells.append(dwell)

        # consume new node-output entries
        for node in range(n):
            outputs = execution.node_outputs[node]
            for index in range(self._cursor[node], len(outputs)):
                event_round, entry = outputs[index]
                self._consume(node, event_round, entry, unit, impaired)
            self._cursor[node] = len(outputs)

    def on_run_end(self, execution: Execution) -> None:
        if self._finalized:
            return
        self._finalized = True
        for node in sorted(self._open):
            span = dict(self._open[node])
            span["ttr_units"] = None
            self.unrecovered.append(span)
        for node in sorted(self._open_dwells):
            for dwell in self._open_dwells[node]:
                dwell["dwell_rounds"] = None  # never resolved in-run
                self.dwells.append(dwell)
        self._open_dwells = {}

    # -- internals -------------------------------------------------------------

    def _consume(self, node: int, event_round: int, entry: Any, unit: int,
                 impaired: set[int]) -> None:
        if entry == ALERT:
            if node in self._open:
                latency = event_round - self._open[node]["start_round"]
            elif node in self._last_degraded:
                latency = event_round - self._last_degraded[node]
            else:
                latency = None  # alert with no observed cause
            self.alerts.append({"node": node, "round": event_round,
                                "unit": unit, "latency_rounds": latency})
            return
        if (isinstance(entry, tuple) and len(entry) == 2 and entry[0] == "degraded"
                and isinstance(entry[1], dict)):
            payload = entry[1]
            self._last_degraded[node] = event_round
            reason = payload.get("reason")
            if reason in SIGNING_REASONS:
                event_unit = payload.get("unit", unit)
                self._signing_impaired.setdefault(event_unit, set()).add(node)
            dwell = {"node": node, "round": event_round, "unit": unit,
                     "reason": reason}
            if node in impaired:
                self._open_dwells.setdefault(node, []).append(dwell)
            else:
                dwell["dwell_rounds"] = 0  # degraded but never disconnected
                self.dwells.append(dwell)

    # -- reporting -------------------------------------------------------------

    def ttr_units(self, node: int | None = None) -> list[int]:
        """Closed spans' time-to-recovery in units (optionally one node)."""
        return [span["ttr_units"] for span in self.spans
                if node is None or span["node"] == node]

    def signing_availability(self) -> dict[int, float]:
        """Per unit: fraction of nodes whose signing machinery survived."""
        n = self._n or 1
        return {
            unit: 1.0 - len(self._signing_impaired.get(unit, ())) / n
            for unit in sorted(self._units_seen)
        }

    def report(self) -> dict:
        """The full SLO record, JSON-ready (E15 persists one per probe)."""
        ttr = self.ttr_units()
        latencies = [a["latency_rounds"] for a in self.alerts
                     if a["latency_rounds"] is not None]
        dwells = [d["dwell_rounds"] for d in self.dwells
                  if d["dwell_rounds"] is not None]
        availability = self.signing_availability()
        return {
            "spans": list(self.spans),
            "unrecovered": list(self.unrecovered),
            "alerts": list(self.alerts),
            "dwells": list(self.dwells),
            "ttr_units_max": max(ttr) if ttr else 0,
            "alert_latency_max": max(latencies) if latencies else 0,
            "dwell_rounds_max": max(dwells) if dwells else 0,
            "signing_availability": {str(u): v for u, v in availability.items()},
            "signing_availability_min": min(availability.values()) if availability else 1.0,
        }
