"""Memoization caches for the protocol hot paths.

Two caches live here:

* :class:`VerificationCache` — memoizes signature verification outcomes
  under the *exact* triple ``(key_repr, message, signature)``.  Both
  positive and negative outcomes are cached; because the key is exact
  (no digests, no truncation) a cached entry can only ever be served for
  a bytewise-identical query, so an adversary-forged signature — which by
  definition differs from any previously verified one — always misses and
  goes through the full verifier.  Entries are bucketed per verification
  key, which makes key-rotation invalidation O(1): when a ULS node
  installs a new unit's local keys the superseded key's whole bucket is
  dropped (see :meth:`repro.core.keystore.KeyStore.install_pending`).
  Rotation invalidation is hygiene, not a safety requirement — stale
  entries are unreachable anyway because VER-CERT pins the expected time
  unit before any signature check — but it keeps the cache from carrying
  dead weight across refresh units.

* :class:`CanonicalKeyCache` — memoizes the canonical dedup encoding of
  wire bodies *by object identity*.  The simulator passes message bodies
  by reference (one flood shares one body object across all relays and
  receivers), so DISPERSE's per-round ``encode_for_hash`` of the same
  body collapses to a dict lookup.  Entries hold a strong reference to
  the body, so an id can never be recycled while its entry is alive.

The caches only ever memoize pure functions under exact keys, so they are
transcript-neutral: any execution with caching on is bit-identical to the
same execution with caching off.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Hashable

from repro.crypto.hashing import encode_for_hash
from repro.perf.config import perf_config, register_cache_clearer

__all__ = [
    "VerificationCache",
    "verification_cache",
    "cached_verify",
    "lookup_verify",
    "store_verify",
    "invalidate_verify_key",
    "CanonicalKeyCache",
    "canonical_body_key",
    "canonical_encoding",
    "canonical_key_fn",
    "canonical_probe",
]


class VerificationCache:
    """Bucketed LRU of signature-verification outcomes.

    The outer map is an LRU over verification keys (their canonical
    ``key_repr``); each bucket maps ``(message, signature)`` to the bool
    the full verifier returned.  ``max_keys`` bounds the number of live
    keys, ``max_entries_per_key`` bounds each bucket (protocols verify a
    bounded number of messages per key per unit, so per-key FIFO eviction
    is effectively never hit in practice).
    """

    def __init__(self, max_keys: int = 1024, max_entries_per_key: int = 4096) -> None:
        self.max_keys = max_keys
        self.max_entries_per_key = max_entries_per_key
        self._buckets: OrderedDict[Hashable, OrderedDict[Hashable, bool]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.skips = 0  # queries with uncacheable keys or signatures
        self.invalidations = 0

    def lookup(self, key_repr: Hashable, message: bytes, signature: Any) -> bool | None:
        bucket = self._buckets.get(key_repr)
        if bucket is None:
            self.misses += 1
            return None
        result = bucket.get((message, signature))
        if result is None:
            self.misses += 1
            return None
        self._buckets.move_to_end(key_repr)
        self.hits += 1
        return result

    def store(self, key_repr: Hashable, message: bytes, signature: Any, result: bool) -> None:
        bucket = self._buckets.get(key_repr)
        if bucket is None:
            bucket = self._buckets[key_repr] = OrderedDict()
            while len(self._buckets) > self.max_keys:
                self._buckets.popitem(last=False)
        bucket[(message, signature)] = result
        while len(bucket) > self.max_entries_per_key:
            bucket.popitem(last=False)

    def invalidate_key(self, key_repr: Hashable) -> int:
        """Drop the whole bucket of one verification key (key rotation).
        Returns the number of entries dropped."""
        bucket = self._buckets.pop(key_repr, None)
        if bucket is None:
            return 0
        self.invalidations += 1
        return len(bucket)

    def clear(self) -> None:
        self._buckets.clear()

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "skips": self.skips,
            "invalidations": self.invalidations,
            "entries": len(self),
            "keys": len(self._buckets),
        }


_VERIFY_CACHE = VerificationCache()
register_cache_clearer(_VERIFY_CACHE.clear)


def verification_cache() -> VerificationCache:
    """The process-global verification cache."""
    return _VERIFY_CACHE


def _cacheable_key(scheme: Any, verify_key: Any, signature: Any) -> Hashable | None:
    """The bucket key, or None when the query cannot be cached safely
    (foreign key type, or a signature object that is not hashable — e.g.
    adversarial garbage off the wire)."""
    try:
        key_repr = scheme.key_repr(verify_key)
    except (TypeError, NotImplementedError):
        return None
    try:
        hash(signature)
    except TypeError:
        return None
    return key_repr


def cached_verify(scheme: Any, verify_key: Any, message: bytes, signature: Any) -> bool:
    """``scheme.verify`` through the verification cache.

    An outcome is only ever stored after the full verifier ran (or, at
    the batched call sites, after a whole batch passed the
    random-linear-combination check — see ``docs/PROTOCOLS.md`` §12 for
    the security argument); a cached ``False`` is just as valid as a
    cached ``True`` because the key pins the exact signature bytes.
    """
    cfg = perf_config()
    if not (cfg.enabled and cfg.verify_cache):
        return scheme.verify(verify_key, message, signature)
    key_repr = _cacheable_key(scheme, verify_key, signature)
    if key_repr is None:
        _VERIFY_CACHE.skips += 1
        return scheme.verify(verify_key, message, signature)
    cached = _VERIFY_CACHE.lookup(key_repr, message, signature)
    if cached is not None:
        return cached
    result = bool(scheme.verify(verify_key, message, signature))
    _VERIFY_CACHE.store(key_repr, message, signature, result)
    return result


def lookup_verify(
    scheme: Any, verify_key: Any, message: bytes, signature: Any
) -> tuple[Hashable | None, bool | None]:
    """Split-phase cache probe for batched call sites.

    Returns ``(bucket_key, cached_result)``: the bucket key is ``None``
    when the query is uncacheable (or the cache is off), the result is
    ``None`` on a miss.  Callers that verify through a batch use
    :func:`store_verify` with the returned key afterwards.
    """
    cfg = perf_config()
    if not (cfg.enabled and cfg.verify_cache):
        return None, None
    key_repr = _cacheable_key(scheme, verify_key, signature)
    if key_repr is None:
        _VERIFY_CACHE.skips += 1
        return None, None
    return key_repr, _VERIFY_CACHE.lookup(key_repr, message, signature)


def store_verify(
    bucket_key: Hashable | None, message: bytes, signature: Any, result: bool
) -> None:
    """Record a verification outcome under a key from :func:`lookup_verify`
    (no-op when the key was uncacheable)."""
    if bucket_key is not None:
        _VERIFY_CACHE.store(bucket_key, message, signature, result)


def invalidate_verify_key(scheme: Any, verify_key: Any) -> int:
    """Drop all cached outcomes under one verification key (rotation)."""
    try:
        key_repr = scheme.key_repr(verify_key)
    except (TypeError, NotImplementedError):
        return 0
    return _VERIFY_CACHE.invalidate_key(key_repr)


class CanonicalKeyCache:
    """Identity-keyed memo of a pure function of one object.

    Entries hold a strong reference to the object, so ``id`` reuse is
    impossible while an entry is alive.  The size bound is a leak guard,
    not a working-set fit — live wire objects number far below it — so
    eviction is simple FIFO, keeping the hit path to one dict lookup.
    """

    def __init__(self, maxsize: int = 16384) -> None:
        self.maxsize = maxsize
        self._entries: OrderedDict[int, tuple[Any, Any]] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, obj: Any, compute: Callable[[Any], Any]) -> Any:
        entry = self._entries.get(id(obj))
        if entry is not None and entry[0] is obj:
            self.hits += 1
            return entry[1]
        self.misses += 1
        value = compute(obj)
        self.put(obj, value)
        return value

    def put(self, obj: Any, value: Any) -> None:
        """Seed the memo with a value the caller just computed (e.g. the
        sender priming the parse memo for the wire tuple it is about to
        flood, so receivers never recompute it)."""
        self._entries[id(obj)] = (obj, value)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


_CANONICAL = CanonicalKeyCache()
register_cache_clearer(_CANONICAL.clear)


def _encode_or_repr(body: Any) -> Hashable:
    try:
        return encode_for_hash(body)
    except TypeError:
        return repr(body)


def canonical_body_key(body: Any) -> Hashable:
    """The canonical dedup key of a wire body — ``encode_for_hash`` when
    encodable, ``repr`` otherwise — memoized by object identity.

    This is byte-for-byte the key DISPERSE always used; the cache only
    removes the re-encoding cost for bodies that flow through many relay
    hops and dedup checks per round.
    """
    cfg = perf_config()
    if not (cfg.enabled and cfg.canonical_cache):
        return _encode_or_repr(body)
    return _CANONICAL.get(body, _encode_or_repr)


def canonical_encoding(body: Any) -> bytes:
    """``encode_for_hash(body)``, memoized by object identity.

    Shares :class:`CanonicalKeyCache` entries with
    :func:`canonical_body_key`: for encodable bodies the cached value *is*
    the canonical encoding, so signing paths (which need the raw bytes,
    not just a dedup key) reuse the same memo.  Unencodable bodies raise
    ``TypeError`` exactly like ``encode_for_hash`` — the cached ``repr``
    fallback is a ``str``, never ``bytes``, so the type check below is an
    exact encodability test.
    """
    key = canonical_body_key(body)
    if type(key) is bytes:
        return key
    raise TypeError(f"cannot encode {type(body).__name__} for hashing")


def canonical_key_fn() -> Callable[[Any], Hashable]:
    """A resolver bound to the current flag state, for per-round hot loops.

    ``canonical_body_key`` re-reads the perf flags on every call; DISPERSE
    keys every envelope it touches several times per round, so the flood
    loop fetches one bound callable per round instead.  The returned
    function computes byte-identical keys either way; it must not be held
    across a :func:`repro.perf.config.configure` call.
    """
    cfg = perf_config()
    if not (cfg.enabled and cfg.canonical_cache):
        return _encode_or_repr
    entries = _CANONICAL._entries
    cache = _CANONICAL

    def resolve(body: Any) -> Hashable:
        entry = entries.get(id(body))
        if entry is not None and entry[0] is body:
            cache.hits += 1
            return entry[1]
        cache.misses += 1
        value = _encode_or_repr(body)
        cache.put(body, value)
        return value

    return resolve


def canonical_probe() -> tuple[dict[int, tuple[Any, Any]], Callable[[Any], Hashable]]:
    """``(entries, miss)`` for loops that inline the memo probe itself.

    The caller probes ``entries.get(id(body))`` and, after the identity
    check ``entry[0] is body``, uses ``entry[1]``; on a miss it calls
    ``miss(body)``, which computes, records and returns the key.  With the
    cache off the returned dict is empty and never written, so every probe
    falls through to a plain computation — same bytes, no memo.  Inlined
    hits bypass the hit counter (only ``misses`` stays exact); like
    :func:`canonical_key_fn`, the pair must not be held across a
    ``configure()`` call.
    """
    cfg = perf_config()
    if not (cfg.enabled and cfg.canonical_cache):
        return {}, _encode_or_repr

    def miss(body: Any) -> Hashable:
        _CANONICAL.misses += 1
        value = _encode_or_repr(body)
        _CANONICAL.put(body, value)
        return value

    return _CANONICAL._entries, miss
