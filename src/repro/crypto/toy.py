"""A deliberately forgeable signature scheme, for negative testing only.

Theorem 14 *requires* the centralized scheme to be EUF-CMA; the natural
scientific control is to run the same protocols with a scheme that is not,
and watch the security experiments fail.  :class:`BrokenScheme` "signs"
with an unkeyed hash, so anyone can forge; the attack modules use
:func:`forge` to impersonate nodes whose protocol stack was configured
with it.

Never use outside tests and the E5 baseline benchmark.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.hashing import tagged_hash
from repro.crypto.signature import KeyPair, SignatureScheme

__all__ = ["BrokenVerifyKey", "BrokenSigningKey", "BrokenSignature", "BrokenScheme", "forge"]

_TAG = "repro/toy/broken"


@dataclass(frozen=True)
class BrokenVerifyKey:
    key_id: bytes


@dataclass(frozen=True)
class BrokenSigningKey:
    key_id: bytes


@dataclass(frozen=True)
class BrokenSignature:
    digest: bytes


class BrokenScheme(SignatureScheme):
    """Unkeyed-hash "signatures": verification depends only on public data,
    so :func:`forge` produces valid signatures without the signing key."""

    name = "broken-toy"

    def key_repr(self, verify_key: BrokenVerifyKey) -> tuple:
        if not isinstance(verify_key, BrokenVerifyKey):
            raise TypeError("not a broken-toy verify key")
        return ("broken-toy", verify_key.key_id)

    def generate(self, rng: random.Random) -> KeyPair:
        key_id = rng.getrandbits(128).to_bytes(16, "big")
        return KeyPair(BrokenVerifyKey(key_id=key_id), BrokenSigningKey(key_id=key_id))

    def sign(self, signing_key: BrokenSigningKey, message: bytes) -> BrokenSignature:
        return BrokenSignature(digest=tagged_hash(_TAG, signing_key.key_id, message))

    def verify(self, verify_key: BrokenVerifyKey, message: bytes, signature: object) -> bool:
        if not isinstance(signature, BrokenSignature) or not isinstance(verify_key, BrokenVerifyKey):
            return False
        return signature.digest == tagged_hash(_TAG, verify_key.key_id, message)


def forge(verify_key: BrokenVerifyKey, message: bytes) -> BrokenSignature:
    """Forge a valid signature from the public key alone — the whole point."""
    return BrokenSignature(digest=tagged_hash(_TAG, verify_key.key_id, message))
