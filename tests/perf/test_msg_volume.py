"""The message-volume layer (``PerfConfig.msg_volume``): parity & fallback.

The layer changes *which* envelopes carry the refresh/DKG protocols —
receipt aggregation over the DISPERSE broadcast primitive, plural
threshold-signer rounds, sampled refresh-help — so unlike every other
perf flag, transcript-digest parity is impossible by construction.  What
these tests pin down instead is the contract docs/PROTOCOLS.md §12
states:

* **outcome parity** — node outputs, system log, blame records
  (``rejected_dealers`` / ``rejected_partials``), key histories and
  certified key reprs are bit-identical with the layer on or off, under
  seeded E13-style chaos as well as in the all-honest case;
* **volume** — messages per refreshment phase drop ≥ 2× even at small n;
* **deterministic fallback** — a requester whose sampled-help recovery
  came up short escalates to the full fan-out (the layer-off path) at
  its next request, and recovers;
* **broadcast certification** — the ``BROADCAST`` destination sentinel
  is accepted for any receiver while every other step-1 rejection is
  unchanged;
* **bounded state** — the per-unit ingest state that used to grow for
  the whole run (PA sessions, signer sessions, the AUTH-SEND accepted
  log, ULS pending signatures) stays O(active units) across many
  refreshes.
"""

import pytest

from repro.analysis.digest import outcome_digest
from repro.analysis.metrics import message_stats
from repro.core.certify import certify, ver_cert, ver_cert_many
from repro.core.uls import UlsProgram, _O_PART2, build_uls_states, uls_schedule
from repro.crypto.group import named_group
from repro.crypto.schnorr import SchnorrScheme
from repro.crypto.shamir import Share
from repro.faults import FaultInjectionAdversary, FaultPlan
from repro.pds.refresh import RefreshService
from repro.perf import BROADCAST, configure, responder_sample, sample_size
from repro.sim.adversary_api import Adversary, PassiveAdversary, faithful_delivery
from repro.sim.clock import Phase
from repro.sim.runner import ULRunner

GROUP = named_group("toy64")
SCHEME = SchnorrScheme(GROUP)


def _run_uls(n, t, seed, adversary=None, units=2, normal_rounds=12):
    public, states, keys = build_uls_states(GROUP, SCHEME, n, t, seed=seed)
    programs = [
        UlsProgram(states[i], SCHEME, keys[i], cert_retransmit=1, cert_grace_rounds=1)
        for i in range(n)
    ]
    schedule = uls_schedule(normal_rounds=normal_rounds)
    runner = ULRunner(programs, adversary or PassiveAdversary(), schedule,
                      s=t, seed=seed)
    execution = runner.run(units=units)
    return programs, execution


def _outcomes(programs, execution):
    return (
        execution.global_output(),
        [frozenset(p.core.refresher.rejected_dealers) for p in programs],
        [frozenset(p.core.signer.rejected_partials) for p in programs],
        [list(p.keystore.history) for p in programs],
        [dict(p.keystore.key_reprs) for p in programs],
    )


# ------------------------------------------------------- responder sample

def test_responder_sample_deterministic_and_bounded():
    n, t = 25, 5
    sample = responder_sample(3, 7, n, t)
    assert sample == responder_sample(3, 7, n, t)
    assert len(sample) == sample_size(n, t) == 2 * t + 1
    assert 7 not in sample
    assert all(0 <= node < n for node in sample)
    assert sample == tuple(sorted(sample))
    # different (unit, requester) pairs draw different samples
    assert sample != responder_sample(4, 7, n, t)
    assert sample != responder_sample(3, 8, n, t)


def test_responder_sample_small_networks_fall_back_to_everyone():
    # when 2t+1 >= n-1 the sample is simply everyone but the requester
    assert responder_sample(1, 2, 5, 2) == (0, 1, 3, 4)
    assert sample_size(5, 2) == 4


# ------------------------------------------------- broadcast certification

def test_broadcast_destination_accepted_for_any_receiver(perf):
    public, states, keys = build_uls_states(GROUP, SCHEME, 5, 2, seed=9)
    raw = tuple(certify(SCHEME, keys[0], ("payload",), 0, BROADCAST, 4))
    for receiver in range(1, 5):
        accepted = ver_cert(SCHEME, public, receiver, 0, 0, 4, raw)
        assert accepted is not None
        assert accepted.message == ("payload",)
    # time/source checks are untouched: replays and forgeries still die
    assert ver_cert(SCHEME, public, 1, 0, 0, 5, raw) is None  # wrong round
    assert ver_cert(SCHEME, public, 1, 0, 1, 4, raw) is None  # wrong unit
    assert ver_cert(SCHEME, public, 1, 2, 0, 4, raw) is None  # wrong source


def test_point_to_point_destination_still_narrow(perf):
    public, states, keys = build_uls_states(GROUP, SCHEME, 5, 2, seed=9)
    raw = tuple(certify(SCHEME, keys[0], ("payload",), 0, 2, 4))
    assert ver_cert(SCHEME, public, 2, 0, 0, 4, raw) is not None
    assert ver_cert(SCHEME, public, 3, 0, 0, 4, raw) is None


def test_ver_cert_many_matches_ver_cert_on_broadcast(perf):
    public, states, keys = build_uls_states(GROUP, SCHEME, 5, 2, seed=9)
    bcast = tuple(certify(SCHEME, keys[0], ("b",), 0, BROADCAST, 4))
    direct = tuple(certify(SCHEME, keys[1], ("d",), 1, 3, 4))
    items = [(0, bcast), (1, direct), (2, bcast)]
    for receiver in (2, 3):
        batched = ver_cert_many(SCHEME, public, receiver, 0, 4, items)
        single = [
            ver_cert(SCHEME, public, receiver, source, 0, 4, raw)
            for source, raw in items
        ]
        assert [m is not None for m in batched] == [m is not None for m in single]
    # the mis-attributed broadcast (alleged source 2, signed by 0) is rejected
    assert ver_cert_many(SCHEME, public, 2, 0, 4, items)[2] is None


# --------------------------------------------------- volume + outcome parity

def test_msgs_per_refresh_halved_with_identical_outcomes(perf):
    configure(enabled=True, msg_volume=False)
    programs_off, execution_off = _run_uls(7, 2, seed=5)
    off = message_stats(execution_off).per_refresh_phase
    outcomes_off = _outcomes(programs_off, execution_off)
    digest_off = outcome_digest(execution_off)

    configure(enabled=True, msg_volume=True)
    programs_on, execution_on = _run_uls(7, 2, seed=5)
    on = message_stats(execution_on).per_refresh_phase
    outcomes_on = _outcomes(programs_on, execution_on)
    digest_on = outcome_digest(execution_on)

    assert on * 2 <= off, (on, off)
    assert digest_on == digest_off
    assert outcomes_on == outcomes_off
    for program in programs_on:
        assert program.keystore.history == [(1, "ok")]
        assert program.state.share_is_valid()


@pytest.mark.parametrize("seed", [101, 113, 17])
def test_chaos_outcome_parity(perf, seed):
    """E13-style chaos: break-ins, drops and forgeries from a seeded fault
    plan produce identical protocol outcomes with the layer on or off."""
    schedule = uls_schedule()
    plan = FaultPlan.generate(seed=seed, n=5, t=2, schedule=schedule, units=3)

    def run():
        public, states, keys = build_uls_states(GROUP, SCHEME, 5, 2, seed=seed)
        programs = [
            UlsProgram(states[i], SCHEME, keys[i], cert_retransmit=1,
                       cert_grace_rounds=1)
            for i in range(5)
        ]
        runner = ULRunner(programs, FaultInjectionAdversary(plan), schedule,
                          s=2, seed=seed)
        execution = runner.run(units=3)
        return _outcomes(programs, execution)

    configure(enabled=True, msg_volume=True)
    outcomes_on = run()
    configure(enabled=True, msg_volume=False)
    outcomes_off = run()
    assert outcomes_on == outcomes_off


# -------------------------------------------------- sampled-help escalation

class _HelpBlocker(Adversary):
    """Corrupts one node's share during unit 0, then starves its unit-1
    share recovery by dropping everything addressed to it from the
    recovery steps of that refresh phase on (the commitment sync still
    arrives; the help values never do)."""

    def __init__(self, victim: int) -> None:
        self.victim = victim
        self._corrupted = False

    def on_round(self, api, info, traffic):
        if (
            not self._corrupted
            and info.phase is Phase.NORMAL
            and info.time_unit == 0
        ):
            self._corrupted = True
            program = api.break_into(self.victim)
            share = program.core.state.share
            program.core.state.share = Share(
                x=share.x, value=(share.value + 1) % GROUP.q
            )
            api.leave(self.victim)

    def deliver(self, api, info, traffic):
        plan = faithful_delivery(traffic, api.n)
        if (
            info.phase is Phase.REFRESH
            and info.time_unit == 1
            and info.index_in_phase >= _O_PART2 + 3
        ):
            plan[self.victim] = []
        return plan


def _run_escalation(msg_volume: bool, spy_needs, spy_blinds):
    configure(enabled=True, msg_volume=msg_volume)
    needs, blinds = [], []
    spy_needs.append(needs)
    spy_blinds.append(blinds)
    programs, execution = _run_uls(
        7, 2, seed=23, adversary=_HelpBlocker(victim=6), units=3
    )
    return programs, execution, needs, blinds


@pytest.fixture
def refresh_spies(monkeypatch):
    """Record every accepted rf-need body and every accepted blind's
    (unit, requester, dealer) across all nodes, per run."""
    need_runs: list[list] = []
    blind_runs: list[list] = []
    original_need = RefreshService._on_need
    original_blind = RefreshService._on_blind

    def spy_need(self, sender, body, phase):
        if need_runs:
            need_runs[-1].append(tuple(body))
        return original_need(self, sender, body, phase)

    def spy_blind(self, ctx, dealer, body, phase):
        if blind_runs:
            blind_runs[-1].append((body[1], body[2], dealer))
        return original_blind(self, ctx, dealer, body, phase)

    monkeypatch.setattr(RefreshService, "_on_need", spy_need)
    monkeypatch.setattr(RefreshService, "_on_blind", spy_blind)
    return need_runs, blind_runs


def test_sampled_help_escalates_to_full_fanout(perf, refresh_spies):
    need_runs, blind_runs = refresh_spies
    programs, execution, needs, blinds = _run_escalation(
        True, need_runs, blind_runs
    )
    victim = programs[6]
    # unit 1: recovery starved -> failed + alert; the layer marks the unit
    assert 1 in victim.core.alert_units
    # unit 2: the request escalated to full fan-out...
    assert ("rf-need", 2, "esc") in needs
    assert ("rf-need", 1, "esc") not in needs
    # ...visible in who dealt blinds: the unit-1 request drew only the
    # 2t+1 sampled responders, the escalated unit-2 request drew everyone
    dealers_by_unit = {
        unit: {dealer for u, requester, dealer in blinds
               if u == unit and requester == 6}
        for unit in (1, 2)
    }
    assert dealers_by_unit[1] == set(responder_sample(1, 6, 7, 2))
    assert len(dealers_by_unit[1]) == 5
    assert dealers_by_unit[2] == set(range(6))
    # ...and the node is whole again
    assert victim.state.share_is_valid()
    assert victim.core.refresher._escalate_from_unit is None
    assert 2 not in victim.core.alert_units


def test_escalation_scenario_outcome_parity(perf, refresh_spies):
    """The same starved-recovery scenario ends identically either way:
    failed at unit 1, recovered at unit 2 — escalation restores exactly
    the layer-off liveness."""
    need_runs, blind_runs = refresh_spies
    programs_on, execution_on, needs_on, _ = _run_escalation(
        True, need_runs, blind_runs
    )
    outcomes_on = _outcomes(programs_on, execution_on)
    programs_off, execution_off, needs_off, _ = _run_escalation(
        False, need_runs, blind_runs
    )
    outcomes_off = _outcomes(programs_off, execution_off)
    assert outcomes_on == outcomes_off
    assert outcome_digest(execution_on) == outcome_digest(execution_off)
    # layer-off never escalates (every request is full fan-out already)
    assert not any(len(body) >= 3 and body[2] == "esc" for body in needs_off)


# ------------------------------------------------------------ bounded state

def test_per_unit_state_stays_bounded_across_refreshes(perf):
    configure(enabled=True, msg_volume=True)
    n, units = 5, 4
    programs, execution = _run_uls(5, 2, seed=11, units=units)
    last = units - 1
    for program in programs:
        core = program.core
        # refresh phases completed clean and released their state
        assert program.keystore.history == [(u, "ok") for u in range(1, units)]
        assert core.refresher._phase is None
        # PA: decided sessions older than the previous unit are gone
        assert core.pa.sessions, "sanity: PA ran"
        assert all(
            session.unit >= last - 1 or not session.decided
            for session in core.pa.sessions.values()
        )
        assert len(core.pa.sessions) <= 2 * n
        # signer: done/failed sessions retire after one unit of grace
        assert core.signer.sessions, "sanity: signer ran"
        assert all(
            session.unit >= last - 1
            for session in core.signer.sessions.values()
            if session.done or session.failed
        )
        assert len(core.signer.sessions) <= 2 * n + 2
        assert all(u >= last - 2 for u in core.signer._retired.values())
        # AUTH-SEND: the accepted log only spans current + previous unit
        floor = core.transport._unit_first_round.get(last - 1, 0)
        assert all(entry[0] >= floor for entry in core.transport.accepted_log)
        assert len(core.transport._unit_first_round) <= 2
        # ULS: no signature request left pending forever
        assert program._pending == {}


def test_failed_signings_release_pending_state(perf):
    """A signing request that can never complete is dropped from
    ``UlsProgram._pending`` with an explicit ``sign-failed`` output
    instead of leaking for the rest of the run."""
    configure(enabled=True, msg_volume=True)
    public, states, keys = build_uls_states(GROUP, SCHEME, 5, 2, seed=3)
    programs = [
        UlsProgram(states[i], SCHEME, keys[i], cert_retransmit=1,
                   cert_grace_rounds=1)
        for i in range(5)
    ]
    schedule = uls_schedule()
    runner = ULRunner(programs, PassiveAdversary(), schedule, s=2, seed=3)
    # only one node asks: t+1 = 3 partials never materialize
    runner.add_external_input(0, schedule.first_normal_round(0), ("sign", "solo"))
    execution = runner.run(units=2)
    assert programs[0]._pending == {}
    assert ("sign-failed", "solo", 0) in execution.outputs_of(0)
    assert ("solo", 0) not in programs[0].signatures


# ------------------------------------------------- per-channel counters

def test_compact_records_carry_channel_counts(perf):
    configure(enabled=True, msg_volume=True, compact_records=False)
    _, full = _run_uls(5, 2, seed=7)
    configure(enabled=True, msg_volume=True, compact_records=True)
    _, compact = _run_uls(5, 2, seed=7)

    assert len(full.records) == len(compact.records)
    for full_record, compact_record in zip(full.records, compact.records):
        assert full_record.sent_by_channel == compact_record.sent_by_channel
        assert sum(compact_record.sent_by_channel.values()) == \
            compact_record.sent_count
    full_stats = message_stats(full)
    compact_stats = message_stats(compact)
    assert full_stats == compact_stats
    assert compact_stats.by_channel  # non-trivial traffic was counted
