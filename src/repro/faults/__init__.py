"""Chaos fault-injection plane: declarative fault schedules + executor.

See :mod:`repro.faults.plan` for the primitives and the safety argument,
:mod:`repro.faults.inject` for execution semantics.
"""

from repro.faults.inject import FaultInjectionAdversary
from repro.faults.plan import (
    CrashFault,
    DelayFault,
    DropFault,
    DuplicateFault,
    FaultPlan,
    MemoryCorruptionFault,
    ReorderFault,
    burst,
    default_corruptor,
    mix_seed,
)

__all__ = [
    "CrashFault",
    "DelayFault",
    "DropFault",
    "DuplicateFault",
    "FaultInjectionAdversary",
    "FaultPlan",
    "MemoryCorruptionFault",
    "ReorderFault",
    "burst",
    "default_corruptor",
    "mix_seed",
]
